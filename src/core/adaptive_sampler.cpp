#include "core/adaptive_sampler.h"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace taser::core {

namespace tt = taser::tensor;

AdaptiveSampler::AdaptiveSampler(EncoderConfig enc_config, DecoderKind decoder_kind,
                                 std::int64_t decoder_hidden, util::Rng& rng)
    : encoder_(enc_config, rng),
      decoder_(decoder_kind, enc_config.m, enc_config.neighbor_width(),
               enc_config.target_width(), decoder_hidden, rng) {
  register_module("encoder", encoder_);
  register_module("decoder", decoder_);
}

void AdaptiveSampler::copy_parameters_from(const AdaptiveSampler& src) {
  auto dst_params = parameters();
  auto src_params = src.parameters();
  TASER_CHECK_MSG(dst_params.size() == src_params.size(),
                  "snapshot/live sampler architecture mismatch");
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    auto& d = dst_params[i].node();
    const auto& s = src_params[i].node();
    TASER_CHECK(d.shape == s.shape);
    // Same-size vector copy: reuses the existing buffer, so steady-state
    // snapshots allocate nothing.
    std::copy(s.data.begin(), s.data.end(), d.data.begin());
  }
  generation_ = src.generation_;
}

void AdaptiveSampler::poison_parameters() {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (auto& p : parameters()) {
    auto& d = p.node().data;
    std::fill(d.begin(), d.end(), nan);
  }
}

void AdaptiveSampler::absorb_gradients_from(AdaptiveSampler& snapshot) {
  auto dst_params = parameters();
  auto src_params = snapshot.parameters();
  TASER_CHECK_MSG(dst_params.size() == src_params.size(),
                  "snapshot/live sampler architecture mismatch");
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    auto& s = src_params[i].node();
    if (s.grad.size() != s.data.size()) continue;  // never received grad
    dst_params[i].node().accumulate_grad(s.grad.data(), s.numel());
    std::fill(s.grad.begin(), s.grad.end(), 0.f);
  }
}

SelectionResult AdaptiveSampler::select(const CandidateSet& cands, std::int64_t n,
                                        util::Rng& rng) {
  const std::int64_t T = cands.targets;
  const std::int64_t m = cands.m;

  Tensor z = encoder_.encode_candidates(cands);
  Tensor z_v = encoder_.encode_targets(cands);
  Tensor mask = Tensor::from_vector({T, m}, std::vector<float>(cands.mask));
  Tensor probs = decoder_.forward(z, z_v, mask);  // [T, m]

  SelectionResult result;
  result.probs = probs;
  result.selected.resize(T, n);
  result.selected_mask.assign(static_cast<std::size_t>(T * n), 0.f);
  result.selected_slot.assign(static_cast<std::size_t>(T * n), 0);

  const float* p = probs.data();
  // Draw the Gumbel uniforms serially (single-stream order is part of the
  // reproducibility contract), then run the per-target top-k in parallel
  // — threads write disjoint targets, so results are bit-identical to the
  // serial loop.
  if (training()) {
    if (gumbel_u_.size() < static_cast<std::size_t>(T * m))
      gumbel_u_.resize(static_cast<std::size_t>(T * m));
    for (std::int64_t i = 0; i < T; ++i) {
      const std::int64_t avail = cands.raw.count[static_cast<std::size_t>(i)];
      if (std::min<std::int64_t>(n, avail) == 0) continue;
      for (std::int64_t j = 0; j < avail; ++j)
        gumbel_u_[static_cast<std::size_t>(i * m + j)] = rng.next_float();
    }
  }
  const auto max_threads = static_cast<std::size_t>(omp_get_max_threads());
  if (keys_tls_.size() < max_threads) keys_tls_.resize(max_threads);

#pragma omp parallel if (T > 32)
  {
    auto& keys = keys_tls_[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < T; ++i) {
      const std::int64_t avail = cands.raw.count[static_cast<std::size_t>(i)];
      const std::int64_t take = std::min<std::int64_t>(n, avail);
      if (take == 0) continue;

      keys.clear();
      for (std::int64_t j = 0; j < avail; ++j) {
        const float pj = std::max(p[i * m + j], 1e-12f);
        float key;
        if (training()) {
          // Gumbel top-k: key = log p + G. Top-n keys ~ PL sampling w/o repl.
          const float u = std::max(gumbel_u_[static_cast<std::size_t>(i * m + j)], 1e-12f);
          key = std::log(pj) - std::log(-std::log(u));
        } else {
          key = pj;  // eval: deterministic top-n
        }
        keys.emplace_back(key, j);
      }
      std::partial_sort(keys.begin(), keys.begin() + take, keys.end(),
                        [](const auto& a, const auto& b) { return a.first > b.first; });

      result.selected.count[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(take);
      for (std::int64_t k = 0; k < take; ++k) {
        const std::int64_t j = keys[static_cast<std::size_t>(k)].second;
        const auto dst = static_cast<std::size_t>(i * n + k);
        const auto src = static_cast<std::size_t>(cands.raw.slot(i, j));
        result.selected.nbr[dst] = cands.raw.nbr[src];
        result.selected.ts[dst] = cands.raw.ts[src];
        result.selected.eid[dst] = cands.raw.eid[src];
        result.selected_mask[dst] = 1.f;
        result.selected_slot[dst] = j;
      }
    }
  }

  // log q of the chosen slots, with gradient to θ: gather rows of the
  // flattened [T*m, 1] log-prob matrix at (i*m + slot).
  Tensor log_probs = tt::log_t(probs);
  Tensor flat = tt::reshape(log_probs, {T * m, 1});
  std::vector<std::int64_t> flat_idx(static_cast<std::size_t>(T * n));
  for (std::int64_t i = 0; i < T; ++i)
    for (std::int64_t k = 0; k < n; ++k)
      flat_idx[static_cast<std::size_t>(i * n + k)] =
          i * m + result.selected_slot[static_cast<std::size_t>(i * n + k)];
  result.log_probs_selected = tt::reshape(tt::index_select0(flat, flat_idx), {T, n});
  return result;
}

}  // namespace taser::core
