#pragma once

#include "sampling/neighbor_finder.h"
#include "tensor/tensor.h"

namespace taser::core {

using sampling::SampledNeighbors;
using tensor::Tensor;

/// The pre-sampled candidate neighborhood of one hop (budget m per
/// target), with everything the neighbor encoder consumes (paper Eq.
/// 12–15): contextual features, relative timespans, appearance
/// frequencies and the identity pattern. Candidates are sorted by
/// recency (timestamp descending) within each target, matching the
/// sorted-neighbor-list convention of the identity encoding (Eq. 13).
struct CandidateSet {
  std::int64_t targets = 0;
  std::int64_t m = 0;  ///< neighbor-finder budget

  SampledNeighbors raw;  ///< sorted desc by timestamp per target

  // Host-side feature buffers (rows for invalid slots are zero).
  std::vector<float> node_feats;    ///< [T*m*dv]
  std::vector<float> edge_feats;    ///< [T*m*de]
  std::vector<float> delta_t;       ///< [T*m]
  std::vector<float> freq;          ///< [T*m] appearance count within target's list
  std::vector<float> identity;      ///< [T*m*m] Eq. 13 pattern
  std::vector<float> mask;          ///< [T*m]
  std::vector<float> target_feats;  ///< [T*dv] the target nodes' own features

  std::int64_t node_dim = 0;
  std::int64_t edge_dim = 0;
};

}  // namespace taser::core
