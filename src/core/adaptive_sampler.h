#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/decoder.h"
#include "core/encoder.h"

namespace taser::core {

/// Result of one adaptive selection over a candidate hop: the n chosen
/// neighbors (dense, padded) plus the autograd handles needed to build
/// the sample loss afterwards.
struct SelectionResult {
  SampledNeighbors selected;  ///< [T x n]
  Tensor probs;               ///< [T, m] full policy q(·|v) (grad → θ)
  Tensor log_probs_selected;  ///< [T, n] log q of chosen slots (grad → θ)
  std::vector<float> selected_mask;        ///< [T*n] 1 = real pick
  std::vector<std::int64_t> selected_slot; ///< [T*n] candidate slot per pick (or 0 pad)
};

/// Temporal adaptive neighbor sampling (paper §III-B): encoder → decoder
/// → sample-n-of-m without replacement. Sampling uses Gumbel top-k on
/// log q, the standard reparameterisation of Plackett–Luce sampling
/// without replacement; in eval mode it degrades to deterministic top-k
/// (exploit-only).
class AdaptiveSampler : public nn::Module {
 public:
  AdaptiveSampler(EncoderConfig enc_config, DecoderKind decoder_kind,
                  std::int64_t decoder_hidden, util::Rng& rng);

  /// Picks n supporting neighbors from each target's m candidates.
  SelectionResult select(const CandidateSet& cands, std::int64_t n, util::Rng& rng);

  /// Stale-θ prefetch support (copy-on-snapshot): overwrites this
  /// sampler's parameter *values* with `src`'s and adopts `src`'s
  /// generation tag. Architectures must match (same EncoderConfig /
  /// decoder shape); gradients and optimizer state are untouched. The
  /// prefetch worker only ever reads a snapshot built this way — θ
  /// updates land in the live copy exclusively.
  void copy_parameters_from(const AdaptiveSampler& src);

  /// Monotone parameter-version tag. The trainer bumps the live
  /// sampler's generation after every optimizer step; snapshots adopt
  /// the live generation at copy time, so at any later point
  /// `live.generation() - snapshot.generation()` is exactly the number
  /// of θ updates the snapshot is stale by — the quantity the depth-K
  /// staleness histogram and the conformance tests account in.
  std::uint64_t generation() const { return generation_; }
  void bump_generation() { ++generation_; }

  /// Debug aid for the snapshot pool: overwrites every parameter value
  /// with a quiet NaN so reads through a released (unpinned) snapshot
  /// surface as NaNs instead of silently seeing a previous batch's θ.
  void poison_parameters();

  /// Folds the parameter gradients a sample-loss backward left on
  /// `snapshot` into this (live) sampler's grad buffers, then clears the
  /// snapshot's. Mirrors the synchronous path exactly: parameters whose
  /// snapshot grad buffer was never touched stay untouched here too, so
  /// Adam's skip-if-never-grad behavior is bit-identical.
  void absorb_gradients_from(AdaptiveSampler& snapshot);

  const NeighborEncoder& encoder() const { return encoder_; }
  const NeighborDecoder& decoder() const { return decoder_; }

 private:
  NeighborEncoder encoder_;
  NeighborDecoder decoder_;
  std::uint64_t generation_ = 0;
  /// select() scratch, recycled across calls. Gumbel uniforms are drawn
  /// serially into `gumbel_u_` (preserving the single-stream draw order)
  /// so the per-target top-k can run OpenMP-parallel with bit-identical
  /// results; `keys_tls_` is one sort buffer per OpenMP thread.
  std::vector<float> gumbel_u_;
  std::vector<std::vector<std::pair<float, std::int64_t>>> keys_tls_;
};

}  // namespace taser::core
