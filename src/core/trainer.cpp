#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/batch_pipeline.h"

#include "obs/metrics.h"
#include "tensor/counters.h"
#include "tensor/ops.h"

namespace taser::core {

namespace tt = taser::tensor;

namespace {
/// Training telemetry, bridged once per epoch (the per-batch hot loop
/// stays untouched — PhaseAccumulator already aggregates).
struct TrainObs {
  obs::Counter epochs = obs::counter("taser.train.epochs");
  obs::Counter iterations = obs::counter("taser.train.iterations");
  obs::Counter stale_builds = obs::counter("taser.train.stale_builds");
  obs::Histogram nf_ms = obs::histogram("taser.train.nf_ms");
  obs::Histogram as_ms = obs::histogram("taser.train.as_ms");
  obs::Histogram fs_ms = obs::histogram("taser.train.fs_ms");
  obs::Histogram pp_ms = obs::histogram("taser.train.pp_ms");
  obs::Gauge mean_loss = obs::gauge("taser.train.mean_loss");
};
const TrainObs& train_obs() {
  static const TrainObs o;
  return o;
}
}  // namespace

const char* to_string(BackboneKind kind) {
  return kind == BackboneKind::kTgat ? "TGAT" : "GraphMixer";
}

const char* to_string(FinderKind kind) {
  switch (kind) {
    case FinderKind::kOrig:
      return "orig-cpu";
    case FinderKind::kTgl:
      return "tgl-cpu";
    case FinderKind::kGpu:
      return "taser-gpu";
  }
  return "?";
}

const char* to_string(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::kOff:
      return "off";
    case PrefetchMode::kSyncOnly:
      return "sync-only";
    case PrefetchMode::kStaleTheta:
      return "stale-theta";
  }
  return "?";
}

void TrainerConfig::validate() const {
  TASER_CHECK_MSG(prefetch_depth >= 1,
                  "prefetch_depth must be >= 1 (got " << prefetch_depth << ")");
  TASER_CHECK_MSG(staleness >= -1,
                  "staleness must be -1 (auto) or >= 0 (got " << staleness << ")");
  if (prefetch_mode == PrefetchMode::kStaleTheta) {
    TASER_CHECK_MSG(staleness <= prefetch_depth,
                    "staleness " << staleness << " exceeds prefetch_depth "
                        << prefetch_depth
                        << " — a build cannot run further ahead than the ring is deep");
  } else {
    // Silently ignoring an explicit staleness request would hand the user
    // a synchronous run while they believe they opted into bounded
    // staleness; reject the contradiction instead.
    TASER_CHECK_MSG(staleness <= 0,
                    "staleness " << staleness << " requires prefetch_mode=stale-theta; "
                        << to_string(prefetch_mode)
                        << " would silently ignore it (leave staleness at -1/0 or "
                           "switch modes)");
  }
  TASER_CHECK_MSG(builder_workers >= 1,
                  "builder_workers must be >= 1 (got " << builder_workers << ")");
  TASER_CHECK_MSG(builder_threads >= 0,
                  "builder_threads must be >= 0 (0 = auto; got " << builder_threads
                      << ")");
}

int TrainerConfig::resolved_staleness() const {
  if (staleness >= 0) return staleness;
  return prefetch_mode == PrefetchMode::kStaleTheta ? prefetch_depth : 0;
}

Trainer::Trainer(const graph::Dataset& data, TrainerConfig config)
    : data_(data), config_(config), device_(config.device_spec), tcsr_(data),
      rng_(config.seed) {
  TASER_CHECK(data_.num_train() > 0);
  config_.validate();
  dst_begin_ = data_.dst_end > data_.dst_begin ? data_.dst_begin : 0;
  dst_end_ = data_.dst_end > data_.dst_begin ? data_.dst_end
                                             : static_cast<graph::NodeId>(data_.num_nodes);

  // Backbone-default static policy (§IV-A): TGAT uniform, GraphMixer
  // most-recent.
  if (!config_.policy_overridden && config_.backbone == BackboneKind::kGraphMixer)
    config_.policy = sampling::FinderPolicy::kMostRecent;

  switch (config_.finder) {
    case FinderKind::kOrig:
      finder_ = std::make_unique<sampling::OrigNeighborFinder>(tcsr_, config_.seed,
                                                               &device_);
      break;
    case FinderKind::kTgl:
      finder_ = std::make_unique<sampling::TglNeighborFinder>(tcsr_, config_.seed);
      break;
    case FinderKind::kGpu:
      finder_ = std::make_unique<sampling::GpuNeighborFinder>(tcsr_, device_);
      break;
  }

  if (config_.cache_ratio > 0.0 && data_.edge_feat_dim > 0) {
    features_ = std::make_unique<cache::CachedFeatureSource>(data_, device_,
                                                             config_.cache_ratio);
  } else {
    features_ = std::make_unique<cache::PlainFeatureSource>(data_, device_);
  }

  util::Rng init_rng(config_.seed ^ 0xabcdef12345ULL);
  models::ModelConfig mc;
  mc.node_feat_dim = data_.node_feat_dim;
  mc.edge_feat_dim = data_.edge_feat_dim;
  mc.hidden_dim = config_.hidden_dim;
  mc.time_dim = config_.time_dim;
  mc.num_neighbors = config_.n_neighbors;
  mc.dropout = config_.dropout;
  if (config_.backbone == BackboneKind::kTgat) {
    model_ = std::make_unique<models::TgatModel>(mc, init_rng);
  } else {
    model_ = std::make_unique<models::GraphMixerModel>(mc, init_rng);
  }
  predictor_ = std::make_unique<models::EdgePredictor>(config_.hidden_dim, init_rng);

  if (config_.ada_neighbor) {
    EncoderConfig ec;
    ec.node_feat_dim = data_.node_feat_dim;
    ec.edge_feat_dim = data_.edge_feat_dim;
    ec.dim = config_.sampler_dim;
    ec.m = config_.m_candidates;
    ec.use_freq = config_.encoder_use_freq;
    ec.use_identity = config_.encoder_use_identity;
    sampler_ = std::make_unique<AdaptiveSampler>(ec, config_.decoder,
                                                 config_.decoder_hidden, init_rng);
    auto sampler_params = sampler_->parameters();
    opt_sampler_ = std::make_unique<nn::Adam>(sampler_params, config_.sampler_lr);
    if (config_.prefetch_mode == PrefetchMode::kStaleTheta) {
      // staleness+1 pooled snapshot instances — the most that can be
      // pinned at once (K+1 at the default staleness=K). Init values are
      // irrelevant: every acquire overwrites them with the live θ.
      const auto slots = static_cast<std::size_t>(config_.resolved_staleness()) + 1;
      snapshot_pool_ = std::make_unique<SamplerSnapshotPool>(slots, [&] {
        util::Rng snap_rng(config_.seed ^ 0x57a1e7ULL);
        return std::make_unique<AdaptiveSampler>(ec, config_.decoder,
                                                 config_.decoder_hidden, snap_rng);
      });
    }
  }
  if (config_.ada_batch) {
    selector_ = std::make_unique<MiniBatchSelector>(data_.num_train(), config_.gamma,
                                                    config_.seed ^ 0x5151ULL);
  }

  BuilderConfig bc;
  bc.n = config_.n_neighbors;
  bc.m = config_.m_candidates;
  bc.policy = config_.policy;
  // Normalise ∆t so a typical per-node inter-event gap is ~1: the
  // time-encoding frequency banks are centred around unit timescales.
  // Shared with the serving session, which must match it bit-for-bit.
  bc.time_scale = data_.mean_inter_event_gap();
  builder_ = std::make_unique<BatchBuilder>(data_, *finder_, *features_, device_,
                                            sampler_.get(), bc);
  // Per-ring-slot build contexts for the training pipeline: one slot per
  // in-flight batch (depth + 1). Training builds route through the pool
  // in every prefetch mode — the sync path rotates through the same slot
  // contexts so sync and async epochs are bit-identical by construction.
  // Finders that cannot be replicated degrade the pool to one shared
  // builder over the shared device (pre-pool behavior, one worker).
  pool_ = std::make_unique<BuilderPool>(
      data_, *finder_, *features_, device_, sampler_.get(), bc,
      static_cast<std::size_t>(config_.prefetch_depth) + 1);

  auto params = model_->parameters();
  auto pp = predictor_->parameters();
  params.insert(params.end(), pp.begin(), pp.end());
  opt_model_ = std::make_unique<nn::Adam>(params, config_.lr);
}

graph::TargetBatch Trainer::make_roots(const std::vector<std::int64_t>& edge_ids) {
  graph::TargetBatch roots;
  const auto B = edge_ids.size();
  roots.nodes.reserve(3 * B);
  roots.times.reserve(3 * B);
  for (auto e : edge_ids) roots.push(data_.src[e], data_.ts[e]);
  for (auto e : edge_ids) roots.push(data_.dst[e], data_.ts[e]);
  for (auto e : edge_ids) {
    const auto span = static_cast<std::uint64_t>(dst_end_ - dst_begin_);
    roots.push(dst_begin_ + static_cast<graph::NodeId>(rng_.next_below(span)),
               data_.ts[e]);
  }
  return roots;
}

Tensor Trainer::embed(const graph::TargetBatch& roots, util::PhaseAccumulator& phases) {
  auto built = builder_->build(roots, model_->num_hops(), phases, rng_);
  util::ScopedPhase pp(phases, phase::kPP);
  Tensor h = model_->compute_embeddings(built.inputs);
  // Stash selections for the sample-loss step of the caller.
  last_selections_ = std::move(built.selections);
  return h;
}

EpochStats Trainer::train_epoch() {
  model_->set_training(true);
  predictor_->set_training(true);
  if (sampler_) sampler_->set_training(true);
  finder_->begin_epoch();
  // Sync every slot context to the shared ledgers before the first build
  // (slot finders capture their per-epoch bases here).
  pool_->begin_epoch();

  util::PhaseAccumulator phases;
  const std::int64_t train = data_.num_train();
  const std::int64_t B = std::min<std::int64_t>(config_.batch_size, train);
  std::int64_t iters = (train + B - 1) / B;
  if (config_.max_iters_per_epoch > 0)
    iters = std::min(iters, config_.max_iters_per_epoch);
  double loss_sum = 0;

  // Prefetch requires a queued batch's construction to be independent of
  // the steps it overlaps: the adaptive selector re-weights the next
  // batch from this batch's logits, and the adaptive sampler's θ update
  // changes the very policy the next build samples from. kSyncOnly
  // therefore degrades to the synchronous path for adaptive runs.
  // kStaleTheta instead overlaps them by snapshotting θ (and sampling
  // the selector) at submit time: the trainer runs up to `staleness`
  // submissions ahead of the last completed step, so a build observes
  // parameters at most `staleness` updates old; the sample-loss gradient
  // each batch produces lands on its snapshot and is folded back into
  // the live θ in consumption (= submission) order before the optimizer
  // step (stale-gradient descent) — that fold-back order is the whole
  // determinism argument at depth K. staleness=0 defers submission until
  // after the step — same machinery, zero staleness, bit-identical to
  // sync.
  const bool adaptive_feedback = selector_ != nullptr || sampler_ != nullptr;
  const bool stale =
      config_.prefetch_mode == PrefetchMode::kStaleTheta && adaptive_feedback;
  const bool async = config_.prefetch_mode == PrefetchMode::kStaleTheta ||
                     (config_.prefetch_mode == PrefetchMode::kSyncOnly &&
                      !adaptive_feedback);
  // How far submission runs ahead of consumption. Non-adaptive async
  // builds depend on no trained state, so they may use the full ring
  // depth with zero accuracy cost; stale mode is capped by the staleness
  // contract; sync modes submit one batch at a time.
  const int lookahead =
      !async ? 0
             : (stale ? config_.resolved_staleness() : config_.prefetch_depth);
  // Per-batch metadata travelling alongside the pipeline's ring, in the
  // same submission order (one struct so the entries cannot
  // desynchronize).
  struct PendingBatch {
    std::vector<std::int64_t> edge_ids;
    SnapshotLease lease;               ///< pins the frozen θ this batch builds from
    std::int64_t theta_at_submit = 0;  ///< θ updates applied at submit time
  };
  // Declared BEFORE the pipeline so the pipeline destructs FIRST on any
  // exit path: workers join (in-progress builds finish, queued jobs are
  // discarded) before the leases below release — and, in debug builds,
  // NaN-poison — the snapshots those builds may still be reading.
  std::deque<PendingBatch> pending;
  BatchPipeline pipeline(*pool_, model_->num_hops(), async,
                         static_cast<std::size_t>(config_.prefetch_depth),
                         config_.builder_workers, config_.builder_threads);
  std::int64_t prefetched = 0, stale_builds = 0;
  std::int64_t theta_updates = 0;
  std::vector<std::int64_t> staleness_hist(
      static_cast<std::size_t>(stale ? config_.resolved_staleness() : 0) + 1, 0);

  // Submission draws from rng_ (root negatives, then the per-batch fork)
  // in batch order in every mode — the deterministic RNG hand-off that
  // keeps prefetch-on and prefetch-off runs bit-identical. Stale mode
  // additionally freezes θ here, into the next round-robin slot of the
  // snapshot pool (a batch's snapshot stays pinned by its in-flight
  // autograd graph until its gradients are folded back at consumption).
  auto submit_iter = [&](std::int64_t it) {
    std::vector<std::int64_t> edge_ids;
    if (selector_) {
      edge_ids = selector_->sample_batch(B);
    } else {
      const std::int64_t lo = it * B;
      const std::int64_t hi = std::min<std::int64_t>(lo + B, train);
      edge_ids.resize(static_cast<std::size_t>(hi - lo));
      for (std::int64_t k = lo; k < hi; ++k)
        edge_ids[static_cast<std::size_t>(k - lo)] = k;
    }
    SnapshotLease lease;
    if (stale && sampler_) {
      lease = SnapshotLease(*snapshot_pool_, *sampler_);
      lease.get()->set_training(sampler_->training());
    }
    // Sequence the two rng_ draws explicitly: negatives first, then the
    // per-batch fork (as arguments their order would be compiler-defined,
    // breaking cross-toolchain reproducibility).
    graph::TargetBatch roots = make_roots(edge_ids);
    pipeline.submit(std::move(roots), rng_.split(), lease.get());
    pending.push_back(PendingBatch{std::move(edge_ids), std::move(lease), theta_updates});
  };

  std::int64_t next_submit = 0;
  for (std::int64_t it = 0; it < iters; ++it) {
    // Top up the ring before consuming batch `it`: batch j may be
    // submitted once step j - staleness has completed, i.e. j ≤ it +
    // lookahead here. With lookahead 0 this submits exactly batch `it`,
    // sequenced after step it-1 — the synchronous order.
    while (next_submit < iters && next_submit <= it + lookahead)
      submit_iter(next_submit++);

    BatchPipeline::Prepared prep = pipeline.next();
    if (lookahead > 0 && it > 0) ++prefetched;
    PendingBatch batch = std::move(pending.front());
    pending.pop_front();
    const std::vector<std::int64_t>& edge_ids = batch.edge_ids;
    AdaptiveSampler* used_snapshot = batch.lease.get();
    // Observed staleness of this build: θ updates applied between its
    // submission and now. Bounded by `lookahead` iterations, hence by
    // the staleness cap.
    const auto observed = static_cast<std::size_t>(theta_updates - batch.theta_at_submit);
    TASER_CHECK(observed < staleness_hist.size());
    ++staleness_hist[observed];
    if (observed > 0) ++stale_builds;
    const auto b = static_cast<std::int64_t>(edge_ids.size());

    auto built = std::move(prep.built);
    last_selections_ = std::move(built.selections);
    phases.merge(prep.phases);
    phases.add(phase::kASSim,
               device_.model().nn_time(prep.sampler_flops, prep.sampler_launches).seconds);

    util::WallTimer pp_timer;
    // Thread-local snapshot: in stale-θ mode the prefetch worker issues
    // the next batch's sampler forward concurrently, and its flops must
    // not bleed into this batch's propagation accounting (they arrive
    // separately via prep.sampler_flops).
    tensor::ThreadOpCounterSnapshot pp_snap;
    Tensor h = model_->compute_embeddings(built.inputs);
    std::vector<std::int64_t> src_idx(static_cast<std::size_t>(b)),
        dst_idx(static_cast<std::size_t>(b)), neg_idx(static_cast<std::size_t>(b));
    for (std::int64_t i = 0; i < b; ++i) {
      src_idx[static_cast<std::size_t>(i)] = i;
      dst_idx[static_cast<std::size_t>(i)] = b + i;
      neg_idx[static_cast<std::size_t>(i)] = 2 * b + i;
    }
    Tensor h_src = tt::index_select0(h, src_idx);
    Tensor h_dst = tt::index_select0(h, dst_idx);
    Tensor h_neg = tt::index_select0(h, neg_idx);
    Tensor pos_logits = predictor_->forward(h_src, h_dst);
    Tensor neg_logits = predictor_->forward(h_src, h_neg);

    Tensor logits = tt::concat_dim0({tt::reshape(pos_logits, {b, 1}),
                                     tt::reshape(neg_logits, {b, 1})});
    std::vector<float> targets(static_cast<std::size_t>(2 * b), 0.f);
    std::fill(targets.begin(), targets.begin() + b, 1.f);
    Tensor loss = tt::bce_with_logits_mean(
        tt::reshape(logits, {2 * b}),
        Tensor::from_vector({2 * b}, std::move(targets)));
    loss_sum += loss.item();

    loss.backward();
    {
      auto params = model_->parameters();
      auto pp_params = predictor_->parameters();
      params.insert(params.end(), pp_params.begin(), pp_params.end());
      nn::clip_grad_norm(params, config_.grad_clip);
    }
    opt_model_->step();
    phases.add(phase::kPP, pp_timer.seconds());
    phases.add(phase::kPPSim,
               device_.model().nn_time(pp_snap.flops(), pp_snap.launches()).seconds);

    // --- importance-score update (Eq. 11) -------------------------------
    if (selector_) {
      const float* pl = pos_logits.data();
      for (std::int64_t i = 0; i < b; ++i)
        selector_->update(edge_ids[static_cast<std::size_t>(i)], pl[i]);
    }

    // --- sampler co-training (Eq. 25/26) --------------------------------
    if (sampler_) {
      util::ScopedPhase as(phases, phase::kAS);
      tensor::ThreadOpCounterSnapshot loss_snap;  // see pp_snap
      Tensor sample_loss =
          build_sample_loss(model_->records(), last_selections_, config_.sample_loss);
      if (sample_loss.defined()) {
        sample_loss.backward();
        // Stale mode: backward() just left ∇θ on the frozen snapshot this
        // batch was built from (its selections' autograd graph roots
        // there). Fold it into the live parameters — gradient computed at
        // θ_{k-s}, applied at θ_k — before clipping and stepping. Batches
        // are consumed in submission order, so fold-backs land in
        // submission order too: the live-θ update sequence is a pure
        // function of the seed, independent of worker timing.
        if (used_snapshot) sampler_->absorb_gradients_from(*used_snapshot);
        auto sp = sampler_->parameters();
        nn::clip_grad_norm(sp, config_.grad_clip);
        opt_sampler_->step();
        opt_sampler_->zero_grad();
        ++theta_updates;
        sampler_->bump_generation();
      }
      phases.add(phase::kASSim,
                 device_.model().nn_time(loss_snap.flops(), loss_snap.launches()).seconds);
    }
    // The batch's backward is done; nothing can touch its frozen θ again,
    // so its pool slot may be recycled (and, in debug builds, poisoned).
    // This is the success-path release point; the lease destructor is the
    // exception-unwind safety net (a failed build must not leak its pin
    // into the next epoch).
    batch.lease.reset();
    opt_model_->zero_grad();
  }

  features_->end_epoch();
  ++epochs_run_;

  EpochStats stats;
  stats.nf_wall = phases.total(phase::kNF);
  stats.nf_sim = phases.total(phase::kNFSim);
  stats.as_wall = phases.total(phase::kAS);
  stats.as_sim = phases.total(phase::kASSim);
  stats.fs_wall = phases.total(phase::kFS);
  stats.fs_sim = phases.total(phase::kFSSim);
  stats.pp_wall = phases.total(phase::kPP);
  stats.pp_sim = phases.total(phase::kPPSim);
  // The GPU finder's wall time is the cost of *simulating* the kernels,
  // not of the pipeline; only its modeled time counts.
  if (config_.finder == FinderKind::kGpu) stats.nf_wall = 0;
  stats.iterations = iters;
  stats.prefetched_batches = prefetched;
  stats.stale_builds = stale_builds;
  stats.staleness_hist = std::move(staleness_hist);
  stats.mean_loss = iters > 0 ? loss_sum / static_cast<double>(iters) : 0;
  // Per-epoch telemetry bridge: EpochStats stays the API; the registry
  // gets the same numbers for the exporters (wall+sim per paper phase).
  train_obs().epochs.add(1);
  train_obs().iterations.add(static_cast<std::uint64_t>(stats.iterations));
  train_obs().stale_builds.add(static_cast<std::uint64_t>(stats.stale_builds));
  train_obs().nf_ms.observe((stats.nf_wall + stats.nf_sim) * 1e3);
  train_obs().as_ms.observe((stats.as_wall + stats.as_sim) * 1e3);
  train_obs().fs_ms.observe((stats.fs_wall + stats.fs_sim) * 1e3);
  train_obs().pp_ms.observe((stats.pp_wall + stats.pp_sim) * 1e3);
  train_obs().mean_loss.set(stats.mean_loss);
  return stats;
}

double Trainer::evaluate_mrr(std::int64_t first_edge, std::int64_t last_edge) {
  TASER_CHECK(first_edge >= 0 && last_edge <= data_.num_edges() && first_edge < last_edge);
  model_->set_training(false);
  predictor_->set_training(false);
  if (sampler_) sampler_->set_training(false);
  finder_->begin_epoch();

  // Evenly strided subsample of at most max_eval_edges.
  std::vector<std::int64_t> eval_edges;
  const std::int64_t span = last_edge - first_edge;
  const std::int64_t count = std::min<std::int64_t>(span, config_.max_eval_edges);
  for (std::int64_t k = 0; k < count; ++k)
    eval_edges.push_back(first_edge + k * span / count);

  const int K = config_.eval_negatives;
  // Chunk so each embedding batch stays modest: E*(2+K) roots.
  const std::int64_t chunk = std::max<std::int64_t>(1, 600 / (2 + K));
  util::PhaseAccumulator scratch;
  double mrr_sum = 0;
  std::int64_t mrr_count = 0;

  for (std::size_t lo = 0; lo < eval_edges.size(); lo += static_cast<std::size_t>(chunk)) {
    const std::size_t hi = std::min(eval_edges.size(), lo + static_cast<std::size_t>(chunk));
    const auto E = static_cast<std::int64_t>(hi - lo);
    graph::TargetBatch roots;
    for (std::size_t k = lo; k < hi; ++k)
      roots.push(data_.src[eval_edges[k]], data_.ts[eval_edges[k]]);
    for (std::size_t k = lo; k < hi; ++k)
      roots.push(data_.dst[eval_edges[k]], data_.ts[eval_edges[k]]);
    for (std::size_t k = lo; k < hi; ++k) {
      for (int j = 0; j < K; ++j) {
        const auto spanN = static_cast<std::uint64_t>(dst_end_ - dst_begin_);
        roots.push(dst_begin_ + static_cast<graph::NodeId>(rng_.next_below(spanN)),
                   data_.ts[eval_edges[k]]);
      }
    }
    Tensor h = embed(roots, scratch);

    // Pair up: pos (src_i, dst_i); negs (src_i, neg_ik).
    std::vector<std::int64_t> a_idx, b_idx;
    for (std::int64_t i = 0; i < E; ++i) {
      a_idx.push_back(i);
      b_idx.push_back(E + i);
    }
    for (std::int64_t i = 0; i < E; ++i)
      for (int j = 0; j < K; ++j) {
        a_idx.push_back(i);
        b_idx.push_back(2 * E + i * K + j);
      }
    Tensor ha = tt::index_select0(h, a_idx);
    Tensor hb = tt::index_select0(h, b_idx);
    Tensor logits = predictor_->forward(ha, hb);
    const float* lg = logits.data();
    for (std::int64_t i = 0; i < E; ++i) {
      const float pos = lg[i];
      int greater = 0, ties = 0;
      for (int j = 0; j < K; ++j) {
        const float neg = lg[E + i * K + j];
        if (neg > pos) ++greater;
        else if (neg == pos) ++ties;
      }
      const double rank = 1.0 + greater + 0.5 * ties;
      mrr_sum += 1.0 / rank;
      ++mrr_count;
    }
  }

  model_->set_training(true);
  predictor_->set_training(true);
  if (sampler_) sampler_->set_training(true);
  return mrr_count > 0 ? mrr_sum / static_cast<double>(mrr_count) : 0.0;
}

}  // namespace taser::core
