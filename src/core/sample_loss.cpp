#include "core/sample_loss.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace taser::core {

namespace tt = taser::tensor;
using models::AggregationRecord;

namespace {

/// Eq. 25 coefficients for one attention aggregation. All inputs are raw
/// data (already detached by construction). λ is estimated with the
/// softmax-stabilised scores, i.e. λ̃_i = mean_j exp(a_ij - max_j a_ij);
/// the missing exp(max) factor is a per-target rescale absorbed by α.
std::vector<float> attention_coeffs(const AggregationRecord& rec, const float* grad,
                                    const std::vector<float>& sel_mask, float alpha,
                                    float beta) {
  const std::int64_t T = rec.attention.size(0);
  const std::int64_t n = rec.attention.size(1);
  const std::int64_t d = rec.output.size(1);
  const float* attn = rec.attention.data();
  const float* scores = rec.scores.data();
  const float* values = rec.values.data();
  const float* h = rec.output.data();
  const float* mask = rec.mask.data();

  std::vector<float> coeff(static_cast<std::size_t>(T * n), 0.f);
  const float inv_T = 1.f / static_cast<float>(T);
  for (std::int64_t i = 0; i < T; ++i) {
    // λ̃_i over valid slots.
    float smax = -1e30f;
    std::int64_t valid = 0;
    for (std::int64_t j = 0; j < n; ++j)
      if (mask[i * n + j] > 0.5f) {
        smax = std::max(smax, scores[i * n + j]);
        ++valid;
      }
    if (valid == 0) continue;
    float lambda = 0.f;
    for (std::int64_t j = 0; j < n; ++j)
      if (mask[i * n + j] > 0.5f) lambda += std::exp(scores[i * n + j] - smax);
    lambda /= static_cast<float>(valid);
    const float scale = inv_T / (std::max(lambda, 1e-6f) * alpha);

    const float* gi = grad + i * d;
    const float* hi = h + i * d;
    for (std::int64_t j = 0; j < n; ++j) {
      const auto s = static_cast<std::size_t>(i * n + j);
      if (sel_mask[s] < 0.5f || mask[i * n + j] < 0.5f) continue;
      const float* vij = values + (i * n + j) * d;
      float dot = 0.f;
      for (std::int64_t k = 0; k < d; ++k) dot += (vij[k] + beta * hi[k]) * gi[k];
      coeff[s] = attn[i * n + j] * dot * scale;
    }
  }
  return coeff;
}

/// Eq. 26 (generic form) coefficients for one mixer aggregation:
/// the mean-pool Jacobian routes g_i to each token equally, so
/// coeff_ij = (g_i · token_ij) / n_valid_i.
std::vector<float> mixer_coeffs(const AggregationRecord& rec, const float* grad,
                                const std::vector<float>& sel_mask) {
  const std::int64_t T = rec.tokens.size(0);
  const std::int64_t n = rec.tokens.size(1);
  const std::int64_t d = rec.tokens.size(2);
  const float* tokens = rec.tokens.data();
  const float* mask = rec.mask.data();

  std::vector<float> coeff(static_cast<std::size_t>(T * n), 0.f);
  const float inv_T = 1.f / static_cast<float>(T);
  for (std::int64_t i = 0; i < T; ++i) {
    std::int64_t valid = 0;
    for (std::int64_t j = 0; j < n; ++j)
      if (mask[i * n + j] > 0.5f) ++valid;
    if (valid == 0) continue;
    const float inv_n = 1.f / static_cast<float>(valid);
    const float* gi = grad + i * d;
    for (std::int64_t j = 0; j < n; ++j) {
      const auto s = static_cast<std::size_t>(i * n + j);
      if (sel_mask[s] < 0.5f || mask[i * n + j] < 0.5f) continue;
      const float* tij = tokens + (i * n + j) * d;
      float dot = 0.f;
      for (std::int64_t k = 0; k < d; ++k) dot += tij[k] * gi[k];
      coeff[s] = dot * inv_n * inv_T;
    }
  }
  return coeff;
}

}  // namespace

tensor::Tensor build_sample_loss(const std::vector<AggregationRecord>& records,
                                 const std::vector<SelectionResult>& selections,
                                 const SampleLossConfig& config) {
  tensor::Tensor total;
  for (const auto& rec : records) {
    TASER_CHECK_MSG(rec.hop >= 0 && rec.hop < static_cast<int>(selections.size()),
                    "aggregation record references hop " << rec.hop << " but only "
                                                         << selections.size()
                                                         << " selections exist");
    const SelectionResult& sel = selections[static_cast<std::size_t>(rec.hop)];
    tensor::Tensor grad = rec.output.grad();
    if (!grad.defined()) continue;  // no gradient reached this aggregation

    const std::int64_t T = sel.log_probs_selected.size(0);
    const std::int64_t n = sel.log_probs_selected.size(1);
    TASER_CHECK_MSG(rec.attention.defined()
                        ? (rec.attention.size(0) == T && rec.attention.size(1) == n)
                        : (rec.tokens.size(0) == T && rec.tokens.size(1) == n),
                    "record/selection shape mismatch at hop " << rec.hop);

    std::vector<float> coeff =
        rec.kind == AggregationRecord::Kind::kAttention
            ? attention_coeffs(rec, grad.data(), sel.selected_mask, config.alpha,
                               config.beta)
            : mixer_coeffs(rec, grad.data(), sel.selected_mask);

    if (config.center_advantage) {
      for (std::int64_t i = 0; i < T; ++i) {
        float sum = 0.f;
        std::int64_t cnt = 0;
        for (std::int64_t j = 0; j < n; ++j) {
          const auto s = static_cast<std::size_t>(i * n + j);
          if (sel.selected_mask[s] > 0.5f) {
            sum += coeff[s];
            ++cnt;
          }
        }
        if (cnt < 2) continue;
        const float mean = sum / static_cast<float>(cnt);
        for (std::int64_t j = 0; j < n; ++j) {
          const auto s = static_cast<std::size_t>(i * n + j);
          if (sel.selected_mask[s] > 0.5f) coeff[s] -= mean;
        }
      }
    }

    tensor::Tensor coeff_t = tensor::Tensor::from_vector({T, n}, std::move(coeff));
    tensor::Tensor part = tt::sum_all(tt::mul(coeff_t, sel.log_probs_selected));
    total = total.defined() ? tt::add(total, part) : part;
  }
  return total;
}

}  // namespace taser::core
