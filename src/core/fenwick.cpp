#include "core/fenwick.h"

#include <algorithm>

namespace taser::core {

FenwickTree::FenwickTree(std::size_t n, double initial)
    : tree_(n + 1, 0.0), weights_(n, initial) {
  // O(n) build: push each node's partial sum to its parent.
  for (std::size_t i = 1; i <= n; ++i) {
    tree_[i] += initial;
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= n) tree_[parent] += tree_[i];
  }
  total_ = initial * static_cast<double>(n);
}

void FenwickTree::add(std::size_t i, double delta) {
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) tree_[j] += delta;
  total_ += delta;
}

void FenwickTree::set(std::size_t i, double w) {
  TASER_CHECK(i < weights_.size());
  TASER_CHECK_MSG(w >= 0.0, "negative weight " << w);
  add(i, w - weights_[i]);
  weights_[i] = w;
}

std::size_t FenwickTree::find_prefix(double target) const {
  std::size_t pos = 0;
  std::size_t mask = 1;
  while (mask * 2 < tree_.size()) mask *= 2;
  for (; mask > 0; mask /= 2) {
    const std::size_t next = pos + mask;
    if (next < tree_.size() && tree_[next] <= target) {
      pos = next;
      target -= tree_[next];
    }
  }
  // pos is the count of elements whose cumulative weight is <= target.
  return std::min(pos, weights_.size() - 1);
}

std::size_t FenwickTree::sample(util::Rng& rng) const {
  TASER_CHECK_MSG(total_ > 0, "sampling from empty weight mass");
  return find_prefix(rng.next_double() * total_);
}

std::vector<std::size_t> FenwickTree::sample_without_replacement(std::size_t count,
                                                                 util::Rng& rng) {
  std::vector<std::size_t> picked;
  std::vector<double> saved;
  picked.reserve(count);
  saved.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    TASER_CHECK_MSG(total_ > 1e-12, "exhausted weight mass at draw " << k);
    const std::size_t i = sample(rng);
    picked.push_back(i);
    saved.push_back(weights_[i]);
    set(i, 0.0);
  }
  for (std::size_t k = 0; k < count; ++k) set(picked[k], saved[k]);
  return picked;
}

}  // namespace taser::core
