#pragma once

#include <memory>

#include "cache/feature_source.h"
#include "core/adaptive_sampler.h"
#include "core/builder_workspace.h"
#include "models/batch_inputs.h"
#include "util/timer.h"

namespace taser::core {

/// Phase keys used by the runtime breakdown (paper Table III). Wall time
/// is host-measured; ".sim" entries are simulated device time accrued in
/// the same phase (kernels + transfers). Benches report the sum. These
/// are now interned enum ids (util::Phase) — the accumulator hot path is
/// a flat array add, no string keys.
namespace phase {
inline constexpr util::Phase kNF = util::Phase::kNF;
inline constexpr util::Phase kNFSim = util::Phase::kNFSim;
inline constexpr util::Phase kAS = util::Phase::kAS;
inline constexpr util::Phase kASSim = util::Phase::kASSim;
inline constexpr util::Phase kFS = util::Phase::kFS;
inline constexpr util::Phase kFSSim = util::Phase::kFSSim;
inline constexpr util::Phase kPP = util::Phase::kPP;
inline constexpr util::Phase kPPSim = util::Phase::kPPSim;
}  // namespace phase

struct BuilderConfig {
  std::int64_t n = 10;  ///< supporting neighbors per target
  std::int64_t m = 25;  ///< pre-sampling candidate budget (adaptive mode)
  sampling::FinderPolicy policy = sampling::FinderPolicy::kUniform;
  /// Divisor applied to raw ∆t before it reaches any time encoding, so a
  /// "typical" recency lands at O(1) regardless of the dataset's raw time
  /// unit (the cos-based encodings are frequency-banded around 1).
  /// Trainer sets this to the mean per-node inter-event gap.
  double time_scale = 1.0;
};

/// Assembles model-ready mini-batches: bi-level sampling (finder budget m
/// → adaptive budget n, §III), feature slicing through the configured
/// FeatureSource, and the encoder-side auxiliary signals (∆t, frequency,
/// identity). When no AdaptiveSampler is supplied, the finder samples n
/// directly (the baseline path).
///
/// The hot path is built for throughput: all intermediate state lives in
/// a BuilderWorkspace arena (zero steady-state heap allocations once
/// batch shapes stabilise), per-target work — recency sort, freq/identity
/// encoding, hop-input slicing — is OpenMP-parallel across targets with
/// bit-identical results to the serial order (threads write disjoint
/// ranges), and the frequency/identity encoding runs in expected O(m)
/// per target via a small open-addressing node map instead of the
/// O(m²) pairwise scan.
///
/// A BatchBuilder is *not* re-entrant: at most one build() may run at a
/// time (the prefetch pipeline serialises builds on its worker thread).
class BatchBuilder {
 public:
  BatchBuilder(const graph::Dataset& data, sampling::NeighborFinder& finder,
               cache::FeatureSource& features, gpusim::Device& device,
               AdaptiveSampler* sampler, BuilderConfig config);

  struct Built {
    models::BatchInputs inputs;
    /// Per-hop selection (empty when non-adaptive); selections[h] chose
    /// the neighbors in inputs.hops[h].
    std::vector<SelectionResult> selections;
  };

  /// `sampler_override`, when non-null, is used for this build's adaptive
  /// selection in place of the constructor-supplied sampler — the stale-θ
  /// prefetch hand-off: the pipeline worker builds against a parameter
  /// snapshot while θ updates land in the live copy. Only valid on a
  /// builder constructed with a sampler (the adaptive path), and the
  /// override must share that sampler's architecture.
  Built build(const graph::TargetBatch& roots, int num_hops,
              util::PhaseAccumulator& phases, util::Rng& rng,
              AdaptiveSampler* sampler_override = nullptr);

  const BuilderConfig& config() const { return config_; }
  bool adaptive() const { return sampler_ != nullptr; }

  /// Arena allocation-event counter (benches/tests assert it goes flat
  /// after the first batch of a fixed shape).
  std::uint64_t workspace_alloc_events() const { return ws_.alloc_events(); }

 private:
  /// Sorts each target's valid candidates by timestamp descending (the
  /// recency order Eq. 13's identity encoding is defined on). Parallel
  /// across targets; ties break on the original slot index, which makes
  /// the result identical to a serial stable sort.
  void sort_by_recency(sampling::SampledNeighbors& s);

  /// Fills ws_.cands in place from ws_.cands.raw (already sampled and
  /// recency-sorted): feature slicing plus the ∆t / mask / freq /
  /// identity signals.
  void fill_candidate_set(const graph::TargetBatch& frontier,
                          util::PhaseAccumulator& phases);

  models::HopInputs hop_inputs_from(const CandidateSet& cands,
                                    const sampling::SampledNeighbors& chosen,
                                    const std::vector<std::int64_t>* slots) const;

  const graph::Dataset& data_;
  sampling::NeighborFinder& finder_;
  cache::FeatureSource& features_;
  gpusim::Device& device_;
  AdaptiveSampler* sampler_;
  BuilderConfig config_;
  BuilderWorkspace ws_;
};

}  // namespace taser::core
