#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace taser::core {

/// Fenwick (binary-indexed) tree over non-negative weights supporting
/// O(log n) point update and O(log n) weighted sampling — the backing
/// store of the adaptive mini-batch selector, where |E_train| importance
/// scores must be re-sampled and re-weighted every iteration.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n, double initial = 0.0);

  std::size_t size() const { return weights_.size(); }

  void set(std::size_t i, double w);
  double get(std::size_t i) const { return weights_[i]; }
  double total() const { return total_; }

  /// Index of the first element whose prefix sum exceeds `target`
  /// (target in [0, total)).
  std::size_t find_prefix(double target) const;

  /// One weighted draw.
  std::size_t sample(util::Rng& rng) const;

  /// `count` draws *without replacement* (weights are temporarily zeroed
  /// and restored). count must be ≤ number of positive-weight elements.
  std::vector<std::size_t> sample_without_replacement(std::size_t count, util::Rng& rng);

 private:
  void add(std::size_t i, double delta);

  std::vector<double> tree_;     ///< 1-based BIT
  std::vector<double> weights_;  ///< raw weights
  double total_ = 0;
};

}  // namespace taser::core
