#pragma once

#include <memory>
#include <vector>

#include "core/batch_builder.h"
#include "core/builder_pool.h"
#include "core/minibatch_selector.h"
#include "core/snapshot_pool.h"
#include "core/sample_loss.h"
#include "graph/tcsr.h"
#include "models/edge_predictor.h"
#include "models/graphmixer.h"
#include "models/tgat.h"
#include "nn/adam.h"
#include "sampling/gpu_finder.h"
#include "sampling/orig_finder.h"
#include "sampling/tgl_finder.h"

namespace taser::core {

enum class BackboneKind { kTgat, kGraphMixer };
enum class FinderKind { kOrig, kTgl, kGpu };

/// How batch k+1's construction relates to batch k's training step.
///  - kOff: every batch is built inline — the fully synchronous baseline.
///  - kSyncOnly: overlap build and train when construction is independent
///    of the step (non-adaptive runs); degrade to the synchronous path as
///    soon as `ada_batch` / `ada_neighbor` feed training results back
///    into construction.
///  - kStaleTheta: overlap adaptive runs too, by building batch k+j
///    (j ≤ `staleness`) from a snapshot of the sampler parameters θ and
///    the selector scores taken at submit time — up to `staleness` steps
///    old. The policy a build samples from lags the live policy by a
///    bounded number of updates, the stale-synchronous pipelining of
///    decoupled sampler/trainer and parameter-server designs (TGN, NLB,
///    SSP).
enum class PrefetchMode { kOff, kSyncOnly, kStaleTheta };

const char* to_string(BackboneKind kind);
const char* to_string(FinderKind kind);
const char* to_string(PrefetchMode mode);

/// Full experiment configuration. Paper defaults (§IV-A): batch 600,
/// n = 10, m = 25, hidden/time/encoding dims 100, lr 1e-4, γ = 0.1,
/// α = 2, β = 1; TGAT samples uniformly, GraphMixer most-recent.
/// Benches shrink dims/batches and record the reduction in EXPERIMENTS.md.
struct TrainerConfig {
  BackboneKind backbone = BackboneKind::kTgat;
  FinderKind finder = FinderKind::kGpu;
  double cache_ratio = 0.0;  ///< 0 = no VRAM cache (baseline feature path)

  bool ada_batch = false;     ///< temporal adaptive mini-batch selection (§III-A)
  bool ada_neighbor = false;  ///< temporal adaptive neighbor sampling (§III-B)

  /// Overlap batch construction with model compute: later batches are
  /// built on a background thread while batch k trains (a depth-K
  /// prefetch ring). kSyncOnly keeps non-adaptive overlap bit-identical
  /// to the serial path and degrades to synchronous building when
  /// ada_batch / ada_neighbor is on; kStaleTheta overlaps adaptive runs
  /// against bounded-staleness parameter snapshots (see PrefetchMode).
  PrefetchMode prefetch_mode = PrefetchMode::kSyncOnly;
  /// Prefetch ring depth K: how many batches construction may run ahead
  /// of consumption (in-flight ≤ K+1; the sampler snapshot pool holds
  /// staleness+1 frozen-θ instances — K+1 at the default staleness=K).
  /// 1 ≡ the classic double buffer. Deeper
  /// rings absorb bursty build times instead of stalling on every slow
  /// build, at the cost of builds observing parameters up to `staleness`
  /// updates old (kStaleTheta; non-adaptive builds depend on no trained
  /// state, so depth is accuracy-free there).
  int prefetch_depth = 1;
  /// kStaleTheta only: maximum parameter age (in θ updates) a build may
  /// observe, in [0, prefetch_depth]. -1 (default) = auto: resolves to
  /// prefetch_depth under kStaleTheta and 0 otherwise. 0 is the
  /// conformance anchor: the snapshot machinery runs (worker build,
  /// frozen-θ hand-off, deferred gradient fold-back) but submission
  /// waits for the step, so the run must be bit-identical to the
  /// synchronous path — asserted by test_pipeline. Explicitly setting
  /// staleness > 0 with kOff/kSyncOnly is a validate() error (those
  /// modes would silently ignore it).
  int staleness = -1;
  /// Concurrent builder workers P over the prefetch ring. Each ring slot
  /// has its own build context (BuilderPool), workers claim batches in
  /// submission order, and side-state folds in consumption order, so any
  /// P is bit-identical to P = 1 at every (depth, staleness) — P only
  /// converts ring depth into build throughput when construction is the
  /// bottleneck. Clamped to min(prefetch_depth + 1, pool.max_workers());
  /// finders that cannot be replicated (orig-cpu) run one worker
  /// regardless.
  int builder_workers = 1;
  /// OpenMP team size inside each builder worker's parallel regions.
  /// 0 = auto: max(1, host_team / (2 * workers)) — the generalisation of
  /// the old "the one worker takes half the host team" halving heuristic.
  /// Thread-count independent results either way.
  int builder_threads = 0;

  /// Rejects contradictory prefetch configurations (throws
  /// std::runtime_error): prefetch_depth < 1, staleness > prefetch_depth,
  /// staleness > 0 outside kStaleTheta, builder_workers < 1, or
  /// builder_threads < 0. Trainer calls this on construction.
  void validate() const;
  /// The staleness bound actually in force after resolving the -1 auto
  /// default (see `staleness`).
  int resolved_staleness() const;

  std::int64_t batch_size = 600;
  std::int64_t n_neighbors = 10;   ///< n
  std::int64_t m_candidates = 25;  ///< m
  std::int64_t hidden_dim = 100;
  std::int64_t time_dim = 100;
  std::int64_t sampler_dim = 100;    ///< encoder dfeat = dtime = dfreq
  std::int64_t decoder_hidden = 100;
  DecoderKind decoder = DecoderKind::kGatV2;
  /// Static finder policy; defaulted per backbone in Trainer (TGAT
  /// uniform, GraphMixer most-recent) unless overridden here.
  sampling::FinderPolicy policy = sampling::FinderPolicy::kUniform;
  bool policy_overridden = false;

  float lr = 1e-3f;
  float sampler_lr = 1e-3f;
  float gamma = 0.1f;  ///< Eq. 11 exploration floor
  SampleLossConfig sample_loss;
  float grad_clip = 5.f;
  float dropout = 0.1f;

  std::uint64_t seed = 7;
  int eval_negatives = 49;          ///< MRR protocol (DistTGL)
  std::int64_t max_eval_edges = 500;
  /// Cap on iterations per epoch (0 = full epoch). Runtime benches use
  /// this to measure per-phase costs without paying for convergence.
  std::int64_t max_iters_per_epoch = 0;
  /// Encoder ablation switches (bench_ablation_extras).
  bool encoder_use_freq = true;
  bool encoder_use_identity = true;
  gpusim::DeviceSpec device_spec = gpusim::rtx6000ada();
};

/// Per-epoch runtime breakdown + loss, in the shape of Table III rows.
///
/// `*_wall` are host-measured seconds of this (CPU) process; `*_sim` are
/// modeled seconds on the simulated device pipeline. The pipeline
/// accessors nf()/as()/fs()/pp() combine them the way the paper's system
/// would experience each step:
///   NF — host work for CPU finders (wall + modeled index H2D + the
///        interpreter model for the original finder); modeled kernel
///        time for the GPU finder (its wall time is simulation cost, and
///        is zeroed by the trainer).
///   AS — modeled device compute of the sampler's tensor work (the
///        sampler trains on-GPU in the paper).
///   FS — host slicing wall + modeled transfer/gather time.
///   PP — modeled device compute of the backbone forward/backward.
struct EpochStats {
  double nf_wall = 0, nf_sim = 0;
  double as_wall = 0, as_sim = 0;
  double fs_wall = 0, fs_sim = 0;
  double pp_wall = 0, pp_sim = 0;
  double mean_loss = 0;
  std::int64_t iterations = 0;
  /// Batches whose construction overlapped the previous batch's training
  /// (0 when the prefetch pipeline ran synchronously).
  std::int64_t prefetched_batches = 0;
  /// Staleness accounting (kStaleTheta): batches built from a sampler-θ
  /// snapshot at least one update older than the live parameters at
  /// consumption time. 0 in sync modes and with staleness=0. Always
  /// equals the sum of staleness_hist[1:].
  std::int64_t stale_builds = 0;
  /// Per-depth staleness histogram: staleness_hist[s] counts batches
  /// whose build observed a θ exactly s updates stale at consumption
  /// time. Sized resolved_staleness()+1 in stale mode (batch j observes
  /// min(j, staleness) when every step updates θ), size 1 otherwise;
  /// sums to `iterations` either way.
  std::vector<std::int64_t> staleness_hist;

  double nf() const { return nf_wall + nf_sim; }
  double as() const { return as_sim; }
  /// FS is fully modeled: host-slice + H2D for the plain path, VRAM /
  /// zero-copy for the cached path. The wall time of our in-process
  /// memcpy is simulation bookkeeping, not pipeline cost.
  double fs() const { return fs_sim; }
  double pp() const { return pp_sim; }
  double total() const { return nf() + as() + fs() + pp(); }
  double wall_total() const { return nf_wall + as_wall + fs_wall + pp_wall; }
};

/// Drives self-supervised temporal link-prediction training (paper
/// Algorithm 1) for any combination of {backbone} x {finder} x {cache} x
/// {adaptive components}, with the per-phase instrumentation the runtime
/// benches report.
class Trainer {
 public:
  Trainer(const graph::Dataset& data, TrainerConfig config);

  EpochStats train_epoch();

  /// Transductive MRR with `eval_negatives` sampled destinations over
  /// edge range [first, last) (capped at max_eval_edges, evenly strided).
  double evaluate_mrr(std::int64_t first_edge, std::int64_t last_edge);
  double evaluate_test_mrr() { return evaluate_mrr(data_.val_end, data_.num_edges()); }
  double evaluate_val_mrr() { return evaluate_mrr(data_.train_end, data_.val_end); }

  const TrainerConfig& config() const { return config_; }
  gpusim::Device& device() { return device_; }
  cache::FeatureSource& features() { return *features_; }
  models::TgnnModel& model() { return *model_; }
  /// Link-prediction head trained alongside the backbone; serving
  /// checkpoints bundle it with the model (serve::save_servable).
  models::EdgePredictor& predictor() { return *predictor_; }
  MiniBatchSelector* selector() { return selector_.get(); }
  AdaptiveSampler* sampler() { return sampler_.get(); }
  /// Frozen-θ snapshot pool (null outside kStaleTheta+ada_neighbor).
  /// Tests assert pinned() == 0 after an epoch — including one that
  /// unwound through an exception (SnapshotLease).
  SamplerSnapshotPool* snapshot_pool() { return snapshot_pool_.get(); }
  /// Per-ring-slot build contexts the training pipeline runs on.
  BuilderPool* builder_pool() { return pool_.get(); }
  sampling::NeighborFinder& finder() { return *finder_; }
  int num_hops() const { return model_->num_hops(); }
  std::int64_t epochs_run() const { return epochs_run_; }

 private:
  graph::TargetBatch make_roots(const std::vector<std::int64_t>& edge_ids);
  /// Embeds roots laid out as [B src | B dst | B*K extra dsts] and
  /// returns the final embeddings.
  Tensor embed(const graph::TargetBatch& roots, util::PhaseAccumulator& phases);

  const graph::Dataset& data_;
  TrainerConfig config_;
  gpusim::Device device_;
  graph::TCSR tcsr_;
  std::unique_ptr<sampling::NeighborFinder> finder_;
  std::unique_ptr<cache::FeatureSource> features_;
  std::unique_ptr<models::TgnnModel> model_;
  std::unique_ptr<models::EdgePredictor> predictor_;
  std::unique_ptr<AdaptiveSampler> sampler_;
  /// Frozen-θ snapshot pool for stale-θ prefetch: staleness+1 instances
  /// cycled in submission order — a batch's snapshot stays pinned from
  /// submit until its sample-loss gradient has been folded back, and at
  /// most staleness+1 batches are in that window at once. Only allocated
  /// in kStaleTheta mode with ada_neighbor.
  std::unique_ptr<SamplerSnapshotPool> snapshot_pool_;
  std::unique_ptr<MiniBatchSelector> selector_;
  std::unique_ptr<BatchBuilder> builder_;
  /// Per-ring-slot build contexts for train_epoch's pipeline (training
  /// builds always go through the pool; evaluation uses builder_ on the
  /// shared device directly).
  std::unique_ptr<BuilderPool> pool_;
  std::unique_ptr<nn::Adam> opt_model_;
  std::unique_ptr<nn::Adam> opt_sampler_;
  util::Rng rng_;
  std::vector<SelectionResult> last_selections_;
  std::int64_t epochs_run_ = 0;
  graph::NodeId dst_begin_, dst_end_;
};

}  // namespace taser::core
