#pragma once

#include "core/candidate_set.h"
#include "nn/linear.h"
#include "nn/time_encoding.h"

namespace taser::core {

/// Dimensions of the neighbor encoder. The paper sets
/// dfeat = dtime = dfreq "to ensure a balanced impact from various
/// information sources" (§III-B); the identity encoding contributes m
/// more dims.
struct EncoderConfig {
  std::int64_t node_feat_dim = 0;  ///< dv of the dataset (0 = none)
  std::int64_t edge_feat_dim = 0;  ///< de of the dataset (0 = none)
  std::int64_t dim = 100;          ///< dfeat = dtime = dfreq
  std::int64_t m = 25;             ///< candidate budget (identity width)
  // Ablation switches (§IV-B reports FE/IE contribute +0.6–1.8% MRR).
  bool use_freq = true;
  bool use_identity = true;

  std::int64_t neighbor_width() const {
    return (node_feat_dim > 0 ? dim : 0) + (edge_feat_dim > 0 ? dim : 0) + dim +
           (use_freq ? dim : 0) + (use_identity ? m : 0);
  }
  std::int64_t target_width() const {
    return (node_feat_dim > 0 ? dim : 0) + dim + (use_freq ? dim : 0);
  }
};

/// TASER's neighbor encoder (paper Eq. 12–15 and Eq. 21): projects raw
/// node/edge features with GeLU-activated linears and concatenates the
/// fixed time encoding TE(∆t), the sinusoidal frequency encoding
/// FE(freq), and the identity encoding IE. The encoder never touches
/// model hidden states — TASER's sampler is top-down (§III-B Remark).
class NeighborEncoder : public nn::Module {
 public:
  NeighborEncoder(EncoderConfig config, util::Rng& rng);

  /// z_(u,t) for every candidate: [T, m, neighbor_width()].
  Tensor encode_candidates(const CandidateSet& cands) const;

  /// z_v for every target (Eq. 21): [T, target_width()].
  Tensor encode_targets(const CandidateSet& cands) const;

  const EncoderConfig& config() const { return config_; }

 private:
  EncoderConfig config_;
  nn::FixedTimeEncoding time_enc_;
  nn::FrequencyEncoding freq_enc_;
  std::unique_ptr<nn::Linear> w_node_;  ///< only when node features exist
  std::unique_ptr<nn::Linear> w_edge_;  ///< only when edge features exist
};

}  // namespace taser::core
