#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "core/batch_builder.h"

namespace taser::core {

/// Double-buffered mini-batch prefetcher: builds batch k+1 on a
/// background worker thread while the caller trains on batch k (the CPU
/// is otherwise idle while the real system's GPU runs propagation — the
/// overlap GNNFlow-style samplers exploit).
///
/// Determinism contract: batches are submitted, built, and consumed in
/// the same total order in both modes, and every submit() carries its own
/// forked Rng (the hand-off). Since a build touches no state outside the
/// builder/finder/feature-source it owns, async and sync runs are
/// bit-identical. Callers must NOT overlap a build with anything that
/// mutates builder-visible state (sampler parameter updates, re-ordered
/// batch selection). Adaptive runs satisfy that in one of two ways: the
/// Trainer degrades to sync mode (kSyncOnly), or — stale-θ prefetch
/// (kStaleTheta) — each submit() additionally carries a *snapshot* of the
/// sampler parameters taken at submit time, which is the only sampler the
/// worker reads for that job; the live sampler is then free to take θ
/// updates while the build runs, at the cost of the build seeing
/// parameters exactly one step stale.
///
/// Phase accounting: the worker measures its own NF/AS/FS wall and
/// simulated time into the Prepared record, plus the sampler's tensor
/// work via thread-local op counters (the global counters would mix in
/// the main thread's concurrent propagation work).
class BatchPipeline {
 public:
  struct Prepared {
    BatchBuilder::Built built;
    util::PhaseAccumulator phases;      ///< NF/AS/FS (wall + sim), worker-measured
    std::uint64_t sampler_flops = 0;    ///< tensor work issued inside build()
    std::uint64_t sampler_launches = 0;
    double build_wall = 0;              ///< total build() wall seconds
  };

  /// async=false degrades to a synchronous pipeline with identical
  /// numerics: submit() enqueues, next() builds inline.
  BatchPipeline(BatchBuilder& builder, int num_hops, bool async);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  bool async() const { return async_; }

  /// Enqueues the next batch in submission order. `rng` is the per-batch
  /// stream forked by the caller — the deterministic RNG hand-off.
  /// `sampler_snapshot`, when non-null, is the frozen-θ sampler this
  /// job's build must select with (stale-θ prefetch); it must stay alive
  /// and unmutated until the job's next() returns.
  void submit(graph::TargetBatch roots, util::Rng rng,
              AdaptiveSampler* sampler_snapshot = nullptr);

  /// Returns the oldest submitted batch, blocking until the worker has
  /// built it (async) or building it inline (sync). Rethrows any
  /// exception the build raised.
  Prepared next();

  /// Batches submitted but not yet consumed.
  std::size_t pending() const;

 private:
  struct Job {
    graph::TargetBatch roots;
    util::Rng rng;
    AdaptiveSampler* sampler_snapshot = nullptr;  ///< stale-θ hand-off (may be null)
  };

  Prepared run(Job job);
  void worker_loop();

  BatchBuilder& builder_;
  int num_hops_;
  bool async_;

  mutable std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable result_ready_;
  std::deque<Job> jobs_;
  std::deque<Prepared> results_;
  std::deque<std::exception_ptr> errors_;  // parallel to results_ (null = ok)
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace taser::core
