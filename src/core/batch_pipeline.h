#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch_builder.h"
#include "core/builder_pool.h"

namespace taser::core {

/// Depth-K ring of prefetch slots with P builder workers: up to
/// `depth() + 1` batches may be in flight (submitted but not yet
/// consumed) while up to `workers()` background threads build them
/// concurrently and the caller trains on the oldest (the CPU is
/// otherwise idle while the real system's GPU runs propagation — the
/// overlap GNNFlow-style samplers exploit). depth = 1, one worker is the
/// classic double buffer; deeper rings absorb bursty builds, and extra
/// workers convert ring depth into build throughput when construction is
/// the bottleneck.
///
/// Determinism contract (multi-builder model):
///  - *Claim order is submission order.* Workers claim queued batches
///    strictly in submission order (a single monotone claim counter);
///    only build *completion* may reorder. next() hands batches out FIFO
///    regardless of completion order.
///  - *Builds share no mutable state.* Batch j builds on ring-slot
///    context j mod capacity() — its own BatchBuilder + workspace and,
///    in pool mode, its own finder replica and device ledger
///    (BuilderPool). Each submit() carries its own forked Rng, and slot
///    finders/devices are repositioned per sequence number
///    (NeighborFinder::begin_build), so a build's output is a pure
///    function of (seq, job) — bit-identical at any worker count, any
///    depth, sync or async.
///  - *Side-state merges in consumption order.* What a serial run would
///    accumulate on shared objects (device sim-time ledger, launch
///    count, cache hit/miss stats) is captured per build as a delta and
///    folded inside next(), in consumption (= submission) order — a
///    fixed-order reduction independent of worker timing.
///  - Callers must NOT overlap a build with anything that mutates
///    builder-visible state (sampler parameter updates, re-ordered batch
///    selection). Adaptive runs satisfy that via sync degradation or the
///    stale-θ snapshot hand-off: `sampler_snapshot` on submit() is the
///    only sampler the build reads, and it must stay alive and unmutated
///    until that batch's next() returns.
///
/// Capacity contract: submitting more than `depth() + 1` batches without
/// consuming is a hard error (TASER_CHECK), never a silent deepening —
/// the ring bound is what the snapshot-pool lifetime argument AND the
/// one-build-per-slot-context-at-a-time argument rest on.
///
/// Teardown contract: destruction (or request_stop()) discards
/// queued-but-unclaimed jobs — no build starts after stop is requested.
/// In-progress builds finish (builds are not interruptible), their
/// results are dropped, and workers exit. This is what makes teardown
/// during exception unwind safe: abandoned jobs may reference sampler
/// snapshots the unwinding caller is about to release, and must never
/// reach a builder.
///
/// Phase accounting: the worker measures its own NF/AS/FS wall and
/// simulated time into the Prepared record, plus the sampler's tensor
/// work via thread-local op counters (the global counters would mix in
/// the main thread's concurrent propagation work).
class BatchPipeline {
 public:
  struct Prepared {
    BatchBuilder::Built built;
    util::PhaseAccumulator phases;      ///< NF/AS/FS (wall + sim), worker-measured
    std::uint64_t sampler_flops = 0;    ///< tensor work issued inside build()
    std::uint64_t sampler_launches = 0;
    double build_wall = 0;              ///< total build() wall seconds
  };

  /// Single-builder mode (legacy): every build runs on `builder`, one
  /// worker, no side-state management — callers own all shared state.
  /// async=false degrades to a synchronous pipeline with identical
  /// numerics: submit() enqueues into the ring, next() builds inline.
  /// `depth` bounds how far submission may run ahead of consumption
  /// (in-flight ≤ depth + 1); 1 reproduces the old double buffer.
  BatchPipeline(BatchBuilder& builder, int num_hops, bool async, std::size_t depth = 1);

  /// Multi-builder mode: builds run on `pool`'s per-slot contexts with up
  /// to `workers` concurrent builder threads (clamped to [1,
  /// min(capacity, pool.max_workers())]); side-state deltas fold in
  /// consumption order. `builder_threads` sets each worker's OpenMP team
  /// size; 0 = auto: max(1, host_team / (2 * workers)) — the
  /// generalisation of the old "the one worker takes half the host team"
  /// heuristic. The pool must outlive the pipeline and have ≥
  /// `depth + 1` slots (or be serial-only).
  BatchPipeline(BuilderPool& pool, int num_hops, bool async, std::size_t depth,
                int workers, int builder_threads = 0);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  bool async() const { return async_; }
  /// Ring depth K: max batches the caller may run ahead of consumption.
  std::size_t depth() const { return ring_.size() - 1; }
  /// Ring slots = depth() + 1 (max in-flight batches).
  std::size_t capacity() const { return ring_.size(); }
  /// Builder worker threads running (0 in sync mode).
  int workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues the next batch in submission order. `rng` is the per-batch
  /// stream forked by the caller — the deterministic RNG hand-off.
  /// `sampler_snapshot`, when non-null, is the frozen-θ sampler this
  /// job's build must select with (stale-θ prefetch); it must stay alive
  /// and unmutated until the job's next() returns. Throws if the ring is
  /// already full (in-flight == capacity()).
  void submit(graph::TargetBatch roots, util::Rng rng,
              AdaptiveSampler* sampler_snapshot = nullptr);

  /// Returns the oldest submitted batch, blocking until a worker has
  /// built it (async) or building it inline (sync), then folds its
  /// side-state deltas (pool mode). Rethrows a failed build's exception
  /// exactly once; later batches build and serve normally.
  Prepared next();

  /// Batches submitted but not yet consumed.
  std::size_t pending() const;
  /// Builds completed (successfully or with a stored error) so far.
  /// Teardown tests assert that queued-but-unclaimed jobs never build.
  std::uint64_t built_count() const;

  /// Initiates teardown: discards queued-but-unclaimed jobs and lets
  /// workers exit after any in-progress build. Idempotent; called by the
  /// destructor (exposed so tests can assert the discard semantics
  /// deterministically before joining).
  void request_stop();

  /// Test/bench hook: called at the top of every build, on the building
  /// thread, with the batch's sequence number. May throw — the exception
  /// is stored as that build's error and rethrown by next(). May sleep —
  /// benches model device-side build time this way so builds overlap on
  /// a single host core. Must be set before the first submit().
  void set_build_hook(std::function<void(std::uint64_t)> hook);

 private:
  struct Job {
    graph::TargetBatch roots;
    util::Rng rng;
    AdaptiveSampler* sampler_snapshot = nullptr;  ///< stale-θ hand-off (may be null)
  };
  /// One ring slot. Batch j's slot is ring_[j % capacity()]: it holds a
  /// queued job iff claimed_ ≤ j < submitted_, and a result iff `ready`
  /// (builds complete out of order under P > 1, so readiness is
  /// per-slot, not a counter). Slot j mod capacity cannot be reused
  /// before batch j is consumed (the capacity check on submit), which is
  /// also what keeps one build per slot context at a time.
  struct Slot {
    Job job;
    Prepared prep;
    std::exception_ptr err;
    BuilderPool::SideState side;
    bool ready = false;
  };

  Prepared run(Job job, std::uint64_t seq);
  void worker_loop();

  BuilderPool* pool_ = nullptr;      ///< multi-builder mode
  BatchBuilder* builder_ = nullptr;  ///< single-builder (legacy) mode
  int num_hops_;
  bool async_;
  int num_workers_requested_ = 1;
  int builder_threads_ = 0;
  std::function<void(std::uint64_t)> hook_;

  mutable std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable result_ready_;
  std::vector<Slot> ring_;
  /// Monotone batch counters; slot of batch j is ring_[j % capacity()].
  /// Invariant: consumed_ ≤ claimed_ ≤ submitted_ ≤ consumed_ + capacity()
  /// and built_ ≤ claimed_. Workers claim at claimed_ (submission order)
  /// and may complete out of order; per-slot `ready` bridges the gap.
  std::uint64_t submitted_ = 0;
  std::uint64_t claimed_ = 0;
  std::uint64_t built_ = 0;
  std::uint64_t consumed_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace taser::core
