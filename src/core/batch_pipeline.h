#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch_builder.h"

namespace taser::core {

/// Depth-K ring of prefetch slots: up to `depth() + 1` batches may be in
/// flight (submitted but not yet consumed) while a background worker
/// builds them in submission order and the caller trains on the oldest
/// (the CPU is otherwise idle while the real system's GPU runs
/// propagation — the overlap GNNFlow-style samplers exploit). depth = 1
/// is the classic double buffer; deeper rings let the trainer run ahead
/// of bursty builds instead of stalling on every slow one.
///
/// Determinism contract: batches are submitted, built, and consumed in
/// one total order in both modes (the worker is single-threaded by
/// design and drains the ring FIFO), and every submit() carries its own
/// forked Rng (the hand-off). Since a build touches no state outside the
/// builder/finder/feature-source it owns, async and sync runs are
/// bit-identical at every depth. Callers must NOT overlap a build with
/// anything that mutates builder-visible state (sampler parameter
/// updates, re-ordered batch selection). Adaptive runs satisfy that in
/// one of two ways: the Trainer degrades to sync mode (kSyncOnly), or —
/// stale-θ prefetch (kStaleTheta) — each submit() additionally carries a
/// *snapshot* of the sampler parameters taken at submit time (drawn from
/// a SamplerSnapshotPool), which is the only sampler the worker reads
/// for that job; the live sampler is then free to take θ updates while
/// the build runs, at the cost of the build seeing parameters up to
/// `staleness` steps old.
///
/// Capacity contract: submitting more than `depth() + 1` batches without
/// consuming is a hard error (TASER_CHECK), never a silent deepening —
/// the ring bound is what the snapshot-pool lifetime argument rests on.
///
/// Phase accounting: the worker measures its own NF/AS/FS wall and
/// simulated time into the Prepared record, plus the sampler's tensor
/// work via thread-local op counters (the global counters would mix in
/// the main thread's concurrent propagation work).
class BatchPipeline {
 public:
  struct Prepared {
    BatchBuilder::Built built;
    util::PhaseAccumulator phases;      ///< NF/AS/FS (wall + sim), worker-measured
    std::uint64_t sampler_flops = 0;    ///< tensor work issued inside build()
    std::uint64_t sampler_launches = 0;
    double build_wall = 0;              ///< total build() wall seconds
  };

  /// async=false degrades to a synchronous pipeline with identical
  /// numerics: submit() enqueues into the ring, next() builds inline.
  /// `depth` bounds how far submission may run ahead of consumption
  /// (in-flight ≤ depth + 1); 1 reproduces the old double buffer.
  BatchPipeline(BatchBuilder& builder, int num_hops, bool async, std::size_t depth = 1);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  bool async() const { return async_; }
  /// Ring depth K: max batches the caller may run ahead of consumption.
  std::size_t depth() const { return ring_.size() - 1; }
  /// Ring slots = depth() + 1 (max in-flight batches).
  std::size_t capacity() const { return ring_.size(); }

  /// Enqueues the next batch in submission order. `rng` is the per-batch
  /// stream forked by the caller — the deterministic RNG hand-off.
  /// `sampler_snapshot`, when non-null, is the frozen-θ sampler this
  /// job's build must select with (stale-θ prefetch); it must stay alive
  /// and unmutated until the job's next() returns. Throws if the ring is
  /// already full (in-flight == capacity()).
  void submit(graph::TargetBatch roots, util::Rng rng,
              AdaptiveSampler* sampler_snapshot = nullptr);

  /// Returns the oldest submitted batch, blocking until the worker has
  /// built it (async) or building it inline (sync). Rethrows any
  /// exception the build raised.
  Prepared next();

  /// Batches submitted but not yet consumed.
  std::size_t pending() const;

 private:
  struct Job {
    graph::TargetBatch roots;
    util::Rng rng;
    AdaptiveSampler* sampler_snapshot = nullptr;  ///< stale-θ hand-off (may be null)
  };
  /// One ring slot. Its lifecycle (queued → building → ready → empty) is
  /// fully determined by the three monotone counters below — batch j's
  /// slot holds a queued job iff built_ ≤ j < submitted_, a result iff
  /// consumed_ ≤ j < built_ — so the slot carries no state of its own.
  /// Slot j mod capacity cannot be reused before batch j is consumed
  /// (the capacity check on submit).
  struct Slot {
    Job job;
    Prepared prep;
    std::exception_ptr err;
  };

  Prepared run(Job job);
  void worker_loop();

  BatchBuilder& builder_;
  int num_hops_;
  bool async_;

  mutable std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable result_ready_;
  std::vector<Slot> ring_;
  /// Monotone batch counters; slot of batch j is ring_[j % capacity()].
  /// Invariant: consumed_ ≤ built_ ≤ submitted_ ≤ consumed_ + capacity().
  std::uint64_t submitted_ = 0;
  std::uint64_t built_ = 0;
  std::uint64_t consumed_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace taser::core
