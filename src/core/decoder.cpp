#include "core/decoder.h"

#include <cmath>

#include "tensor/ops.h"

namespace taser::core {

namespace tt = taser::tensor;

const char* to_string(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::kLinear:
      return "linear";
    case DecoderKind::kGat:
      return "gat";
    case DecoderKind::kGatV2:
      return "gatv2";
    case DecoderKind::kTransformer:
      return "transformer";
  }
  return "?";
}

NeighborDecoder::NeighborDecoder(DecoderKind kind, std::int64_t m, std::int64_t in_dim,
                                 std::int64_t target_dim, std::int64_t hidden,
                                 util::Rng& rng)
    : kind_(kind),
      m_(m),
      hidden_(hidden),
      trunk_(m, in_dim, rng),
      proj_u_(in_dim, kind == DecoderKind::kLinear ? 1 : hidden, rng) {
  register_module("trunk", trunk_);
  register_module("proj_u", proj_u_);
  if (kind != DecoderKind::kLinear) {
    proj_v_ = std::make_unique<nn::Linear>(target_dim, hidden, rng);
    register_module("proj_v", *proj_v_);
  }
  if (kind == DecoderKind::kGat || kind == DecoderKind::kGatV2) {
    score_u_ = std::make_unique<nn::Linear>(hidden, 1, rng, /*bias=*/false);
    register_module("score_u", *score_u_);
  }
  if (kind == DecoderKind::kGat) {
    score_v_ = std::make_unique<nn::Linear>(hidden, 1, rng, /*bias=*/false);
    register_module("score_v", *score_v_);
  }
}

Tensor NeighborDecoder::forward(const Tensor& z, const Tensor& z_v,
                                const Tensor& mask) const {
  const std::int64_t T = z.size(0);
  TASER_CHECK_MSG(z.size(1) == m_, "decoder built for m=" << m_ << ", got " << z.size(1));

  // Eq. 16: Mixer trunk over (hidden, neighbor) dims.
  Tensor zt = trunk_.forward(z);  // [T, m, in_dim]

  Tensor scores;  // [T, m]
  switch (kind_) {
    case DecoderKind::kLinear: {
      // Eq. 17.
      scores = tt::reshape(proj_u_.forward(zt), {T, m_});
      break;
    }
    case DecoderKind::kGat: {
      // Eq. 18: LeakyReLU(a_u·W z_u + a_v·W' z_v).
      Tensor su = tt::reshape(score_u_->forward(proj_u_.forward(zt)), {T, m_});
      Tensor sv = score_v_->forward(proj_v_->forward(z_v));  // [T, 1]
      scores = tt::leaky_relu(tt::add(su, sv));
      break;
    }
    case DecoderKind::kGatV2: {
      // Eq. 19: a·LeakyReLU(W z_u + W' z_v).
      Tensor hu = proj_u_.forward(zt);                                   // [T, m, h]
      Tensor hv = tt::reshape(proj_v_->forward(z_v), {T, 1, hidden_});   // [T, 1, h]
      Tensor h = tt::leaky_relu(tt::add(hu, hv));
      scores = tt::reshape(score_u_->forward(h), {T, m_});
      break;
    }
    case DecoderKind::kTransformer: {
      // Eq. 20: (W_t z_v)(W'_t Z)^T / sqrt(m).
      Tensor q = tt::reshape(proj_v_->forward(z_v), {T, 1, hidden_});
      Tensor k = proj_u_.forward(zt);  // [T, m, h]
      scores = tt::mul_scalar(tt::sum_dim(tt::mul(k, q), -1),
                              1.f / std::sqrt(static_cast<float>(m_)));
      break;
    }
  }

  // Masked softmax: padding slots get probability ~0.
  Tensor neg_mask = tt::mul_scalar(tt::add_scalar(mask, -1.f), 1e4f);
  return tt::softmax_lastdim(tt::add(scores, neg_mask));
}

}  // namespace taser::core
