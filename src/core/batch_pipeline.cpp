#include "core/batch_pipeline.h"

#include <omp.h>

#include <algorithm>

#include "tensor/counters.h"
#include "util/check.h"

namespace taser::core {

BatchPipeline::BatchPipeline(BatchBuilder& builder, int num_hops, bool async,
                             std::size_t depth)
    : builder_(builder), num_hops_(num_hops), async_(async), ring_(depth + 1) {
  if (async_) worker_ = std::thread([this] { worker_loop(); });
}

BatchPipeline::~BatchPipeline() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    job_ready_.notify_all();
    worker_.join();
  }
}

BatchPipeline::Prepared BatchPipeline::run(Job job) {
  Prepared prep;
  tensor::ThreadOpCounterSnapshot snap;
  util::WallTimer timer;
  prep.built = builder_.build(job.roots, num_hops_, prep.phases, job.rng,
                              job.sampler_snapshot);
  prep.build_wall = timer.seconds();
  prep.sampler_flops = snap.flops();
  prep.sampler_launches = snap.launches();
  return prep;
}

void BatchPipeline::worker_loop() {
  // The main thread's model compute runs full-size OpenMP teams
  // concurrently with our builds. Cap only the worker's teams at half:
  // propagation is the critical path and keeps its full team (at the
  // cost of ~1.5x oversubscription while a build overlaps), while the
  // build — usually the shorter stage — yields. (Per-thread ICV: affects
  // only the worker's parallel regions; results are thread-count
  // independent.)
  omp_set_num_threads(std::max(1, omp_get_max_threads() / 2));
  for (;;) {
    Job job;
    std::uint64_t seq;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [this] { return stop_ || built_ < submitted_; });
      if (built_ == submitted_) return;  // stop requested and ring drained
      seq = built_;
      job = std::move(ring_[seq % ring_.size()].job);
    }
    Prepared prep;
    std::exception_ptr err = nullptr;
    try {
      prep = run(std::move(job));
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = ring_[seq % ring_.size()];
      slot.prep = std::move(prep);
      slot.err = err;
      ++built_;
    }
    result_ready_.notify_all();
  }
}

void BatchPipeline::submit(graph::TargetBatch roots, util::Rng rng,
                           AdaptiveSampler* sampler_snapshot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TASER_CHECK_MSG(submitted_ - consumed_ < ring_.size(),
                    "BatchPipeline ring full: all " << ring_.size() << " slots (depth "
                        << depth() << ") in flight — consume with next() before "
                        "submitting deeper");
    Slot& slot = ring_[submitted_ % ring_.size()];
    slot.job = Job{std::move(roots), rng, sampler_snapshot};
    slot.err = nullptr;
    ++submitted_;
  }
  if (async_) job_ready_.notify_one();
}

BatchPipeline::Prepared BatchPipeline::next() {
  if (!async_) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TASER_CHECK_MSG(submitted_ > consumed_,
                      "BatchPipeline::next() with nothing submitted");
      job = std::move(ring_[consumed_ % ring_.size()].job);
      ++consumed_;
      ++built_;  // inline build: the counters stay in lockstep
    }
    return run(std::move(job));
  }
  std::unique_lock<std::mutex> lock(mu_);
  TASER_CHECK_MSG(submitted_ > consumed_, "BatchPipeline::next() with nothing submitted");
  // Batch consumed_ is ready exactly when the worker has built past it;
  // the counters are the whole state machine.
  result_ready_.wait(lock, [this] { return built_ > consumed_; });
  Slot& slot = ring_[consumed_ % ring_.size()];
  Prepared prep = std::move(slot.prep);
  std::exception_ptr err = slot.err;
  slot.err = nullptr;
  ++consumed_;
  lock.unlock();
  if (err) std::rethrow_exception(err);
  return prep;
}

std::size_t BatchPipeline::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(submitted_ - consumed_);
}

}  // namespace taser::core
