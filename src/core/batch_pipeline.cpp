#include "core/batch_pipeline.h"

#include <omp.h>

#include <algorithm>

#include "tensor/counters.h"
#include "util/check.h"

namespace taser::core {

BatchPipeline::BatchPipeline(BatchBuilder& builder, int num_hops, bool async)
    : builder_(builder), num_hops_(num_hops), async_(async) {
  if (async_) worker_ = std::thread([this] { worker_loop(); });
}

BatchPipeline::~BatchPipeline() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    job_ready_.notify_all();
    worker_.join();
  }
}

BatchPipeline::Prepared BatchPipeline::run(Job job) {
  Prepared prep;
  tensor::ThreadOpCounterSnapshot snap;
  util::WallTimer timer;
  prep.built = builder_.build(job.roots, num_hops_, prep.phases, job.rng,
                              job.sampler_snapshot);
  prep.build_wall = timer.seconds();
  prep.sampler_flops = snap.flops();
  prep.sampler_launches = snap.launches();
  return prep;
}

void BatchPipeline::worker_loop() {
  // The main thread's model compute runs full-size OpenMP teams
  // concurrently with our builds. Cap only the worker's teams at half:
  // propagation is the critical path and keeps its full team (at the
  // cost of ~1.5x oversubscription while a build overlaps), while the
  // build — usually the shorter stage — yields. (Per-thread ICV: affects
  // only the worker's parallel regions; results are thread-count
  // independent.)
  omp_set_num_threads(std::max(1, omp_get_max_threads() / 2));
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop requested and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    Prepared prep;
    std::exception_ptr err = nullptr;
    try {
      prep = run(std::move(job));
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      results_.push_back(std::move(prep));
      errors_.push_back(err);
    }
    result_ready_.notify_all();
  }
}

void BatchPipeline::submit(graph::TargetBatch roots, util::Rng rng,
                           AdaptiveSampler* sampler_snapshot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(Job{std::move(roots), rng, sampler_snapshot});
    ++pending_;
  }
  if (async_) job_ready_.notify_one();
}

BatchPipeline::Prepared BatchPipeline::next() {
  if (!async_) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TASER_CHECK_MSG(!jobs_.empty(), "BatchPipeline::next() with nothing submitted");
      job = std::move(jobs_.front());
      jobs_.pop_front();
      --pending_;
    }
    return run(std::move(job));
  }
  std::unique_lock<std::mutex> lock(mu_);
  TASER_CHECK_MSG(pending_ > 0, "BatchPipeline::next() with nothing submitted");
  result_ready_.wait(lock, [this] { return !results_.empty(); });
  Prepared prep = std::move(results_.front());
  results_.pop_front();
  std::exception_ptr err = errors_.front();
  errors_.pop_front();
  --pending_;
  if (err) std::rethrow_exception(err);
  return prep;
}

std::size_t BatchPipeline::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace taser::core
