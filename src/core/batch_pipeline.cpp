#include "core/batch_pipeline.h"

#include <omp.h>

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/counters.h"
#include "util/check.h"

namespace taser::core {

namespace {
/// Build-pipeline telemetry (lazy; registration/interning lock once).
/// The phase-level spans (phase.NF / phase.AS / phase.FS + .sim twins)
/// are emitted inside BatchBuilder by PhaseScope and nest under
/// build.batch via the per-thread RAII stack.
struct BuildObs {
  obs::SpanName claim = obs::intern_span_name("build.claim");
  obs::SpanName batch = obs::intern_span_name("build.batch");
  obs::SpanName wait = obs::intern_span_name("build.wait");
  obs::Counter batches = obs::counter("taser.build.batches");
  obs::Histogram build_ms = obs::histogram("taser.build.build_ms");
};
const BuildObs& build_obs() {
  static const BuildObs o;
  return o;
}
}  // namespace

BatchPipeline::BatchPipeline(BatchBuilder& builder, int num_hops, bool async,
                             std::size_t depth)
    : builder_(&builder), num_hops_(num_hops), async_(async), ring_(depth + 1) {
  if (async_) workers_.emplace_back([this] { worker_loop(); });
}

BatchPipeline::BatchPipeline(BuilderPool& pool, int num_hops, bool async,
                             std::size_t depth, int workers, int builder_threads)
    : pool_(&pool), num_hops_(num_hops), async_(async), ring_(depth + 1),
      builder_threads_(builder_threads) {
  TASER_CHECK_MSG(!pool.parallel() || pool.num_slots() >= ring_.size(),
                  "BuilderPool has " << pool.num_slots() << " slots but the ring needs "
                      << ring_.size()
                      << " — every in-flight batch needs its own build context");
  // More workers than ring slots can never run concurrently (in-flight ≤
  // capacity), and serial-only pools support exactly one.
  num_workers_requested_ = std::clamp(workers, 1,
                                      std::min(static_cast<int>(ring_.size()),
                                               pool.max_workers()));
  if (async_) {
    workers_.reserve(static_cast<std::size_t>(num_workers_requested_));
    for (int w = 0; w < num_workers_requested_; ++w)
      workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchPipeline::~BatchPipeline() {
  request_stop();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

void BatchPipeline::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_ready_.notify_all();
}

void BatchPipeline::set_build_hook(std::function<void(std::uint64_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  TASER_CHECK_MSG(submitted_ == 0, "set_build_hook after first submit");
  hook_ = std::move(hook);
}

BatchPipeline::Prepared BatchPipeline::run(Job job, std::uint64_t seq) {
  if (hook_) hook_(seq);
  BatchBuilder& builder = pool_ ? pool_->builder_for(seq) : *builder_;
  Prepared prep;
  tensor::ThreadOpCounterSnapshot snap;
  obs::TraceSpan batch_span(build_obs().batch, seq);
  util::WallTimer timer;
  prep.built = builder.build(job.roots, num_hops_, prep.phases, job.rng,
                             job.sampler_snapshot);
  prep.build_wall = timer.seconds();
  prep.sampler_flops = snap.flops();
  prep.sampler_launches = snap.launches();
  build_obs().batches.add(1);
  build_obs().build_ms.observe(prep.build_wall * 1e3);
  return prep;
}

void BatchPipeline::worker_loop() {
  // The main thread's model compute runs full-size OpenMP teams
  // concurrently with our builds. Split the remaining half of the host
  // team across the active builders: propagation is the critical path
  // and keeps its full team (at the cost of oversubscription while
  // builds overlap), while the builds — usually the shorter stage —
  // yield. An explicit builder_threads overrides the heuristic.
  // (Per-thread ICV: affects only this worker's parallel regions;
  // results are thread-count independent.)
  omp_set_num_threads(
      builder_threads_ > 0
          ? builder_threads_
          : std::max(1, omp_get_max_threads() / (2 * num_workers_requested_)));
  for (;;) {
    Job job;
    std::uint64_t seq;
    {
      obs::TraceSpan claim_span(build_obs().claim);
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [this] { return stop_ || claimed_ < submitted_; });
      // Stop wins over queued work: jobs that are submitted but not yet
      // claimed are discarded, never built — teardown must not run
      // builds nobody will consume (their snapshots may already be
      // released by an unwinding caller).
      if (stop_) return;
      seq = claimed_++;
      job = std::move(ring_[seq % ring_.size()].job);
    }
    if (pool_) pool_->begin_build(seq, num_hops_);
    Prepared prep;
    std::exception_ptr err = nullptr;
    try {
      prep = run(std::move(job), seq);
    } catch (...) {
      err = std::current_exception();
    }
    BuilderPool::SideState side;
    if (pool_) side = pool_->end_build(seq);
    {
      std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = ring_[seq % ring_.size()];
      slot.prep = std::move(prep);
      slot.err = err;
      slot.side = side;
      slot.ready = true;
      ++built_;
    }
    result_ready_.notify_all();
  }
}

void BatchPipeline::submit(graph::TargetBatch roots, util::Rng rng,
                           AdaptiveSampler* sampler_snapshot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TASER_CHECK_MSG(submitted_ - consumed_ < ring_.size(),
                    "BatchPipeline ring full: all " << ring_.size() << " slots (depth "
                        << depth() << ") in flight — consume with next() before "
                        "submitting deeper");
    Slot& slot = ring_[submitted_ % ring_.size()];
    slot.job = Job{std::move(roots), rng, sampler_snapshot};
    slot.err = nullptr;
    slot.ready = false;
    ++submitted_;
  }
  if (async_) job_ready_.notify_one();
}

BatchPipeline::Prepared BatchPipeline::next() {
  if (!async_) {
    Job job;
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TASER_CHECK_MSG(submitted_ > consumed_,
                      "BatchPipeline::next() with nothing submitted");
      seq = consumed_;
      job = std::move(ring_[seq % ring_.size()].job);
      ++consumed_;
      ++claimed_;
      ++built_;  // inline build: the counters stay in lockstep
    }
    // Same slot rotation and positioning as the async path, so sync runs
    // are bit-identical to async ones by construction.
    if (pool_) pool_->begin_build(seq, num_hops_);
    Prepared prep;
    try {
      prep = run(std::move(job), seq);
    } catch (...) {
      if (pool_) pool_->fold(pool_->end_build(seq));
      throw;
    }
    if (pool_) pool_->fold(pool_->end_build(seq));
    return prep;
  }
  std::unique_lock<std::mutex> lock(mu_);
  TASER_CHECK_MSG(submitted_ > consumed_, "BatchPipeline::next() with nothing submitted");
  // Builds may complete out of order under P > 1 workers; batch
  // consumed_ is ready exactly when its own slot is.
  Slot& slot = ring_[consumed_ % ring_.size()];
  {
    obs::TraceSpan wait_span(build_obs().wait, consumed_);
    result_ready_.wait(lock, [&slot] { return slot.ready; });
  }
  Prepared prep = std::move(slot.prep);
  std::exception_ptr err = slot.err;
  BuilderPool::SideState side = slot.side;
  slot.err = nullptr;
  slot.ready = false;
  ++consumed_;
  lock.unlock();
  // Consumption-order fold, even for a failed build: its partial deltas
  // keep the shared ledger consistent.
  if (pool_) pool_->fold(side);
  if (err) std::rethrow_exception(err);
  return prep;
}

std::size_t BatchPipeline::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(submitted_ - consumed_);
}

std::uint64_t BatchPipeline::built_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return built_;
}

}  // namespace taser::core
